package workload

import (
	"fmt"

	"ossd/internal/fsmodel"
	"ossd/internal/sim"
	"ossd/internal/trace"
)

// PostmarkConfig parameterizes the Postmark-style small-file workload
// (Katcher, NetApp TR-3022): a pool of small files churned by
// read/append/create/delete transactions. Running it through the fsmodel
// allocator yields the paper's §3.5 trace: block-level reads and writes
// interleaved with free notifications at deleted files' block ranges.
type PostmarkConfig struct {
	// Transactions is the number of transactions after initial file
	// creation.
	Transactions int
	// InitialFiles seeds the pool.
	InitialFiles int
	// FileSizeMin/Max bound file sizes in bytes (Postmark defaults:
	// 500 B – 9.77 KB; we default to 512 B – 16 KB).
	FileSizeMin, FileSizeMax int64
	// CapacityBytes is the file-system size the trace targets.
	CapacityBytes int64
	// BlockSize is the allocator block size (default 4096).
	BlockSize int64
	// MeanInterarrival spaces transactions (exponential); 0 means
	// back-to-back.
	MeanInterarrival sim.Time
	// NoMetadata suppresses the per-transaction metadata write (inode /
	// journal block). Real file systems interleave metadata writes with
	// data writes, which is what keeps Postmark's writes from coalescing
	// into long contiguous runs.
	NoMetadata bool
	// Seed selects the random stream.
	Seed int64
}

func (c *PostmarkConfig) defaults() error {
	if c.Transactions <= 0 {
		return fmt.Errorf("workload: postmark needs transactions, got %d", c.Transactions)
	}
	if c.InitialFiles <= 0 {
		c.InitialFiles = 100
	}
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.FileSizeMin == 0 {
		c.FileSizeMin = 512
	}
	if c.FileSizeMax == 0 {
		c.FileSizeMax = 16 << 10
	}
	if c.FileSizeMax < c.FileSizeMin {
		return fmt.Errorf("workload: file size max < min")
	}
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("workload: postmark needs capacity")
	}
	return nil
}

// Postmark streams the trace one transaction at a time: the file-system
// model evolves as the stream is pulled, so memory is bounded by the
// live file set, never by the transaction count.
func Postmark(cfg PostmarkConfig) (trace.Stream, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	// Reserve the tail 1/32 of the space for metadata blocks (inode
	// tables, journal); the allocator manages the rest.
	metaBase := cfg.CapacityBytes
	metaBlocks := int64(1)
	if !cfg.NoMetadata {
		metaRegion := cfg.CapacityBytes / 32 / cfg.BlockSize * cfg.BlockSize
		if metaRegion < cfg.BlockSize {
			metaRegion = cfg.BlockSize
		}
		metaBase = cfg.CapacityBytes - metaRegion
		metaBlocks = metaRegion / cfg.BlockSize
	}
	fs, err := fsmodel.New(metaBase, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	var at sim.Time
	// emit is rebound to the stream's buffer on every step.
	var emit func(trace.Op)
	tick := func() {
		if cfg.MeanInterarrival > 0 {
			at += rng.Exponential(cfg.MeanInterarrival)
		}
	}
	meta := func(id fsmodel.FileID) {
		if cfg.NoMetadata {
			return
		}
		blk := int64(id) % metaBlocks
		emit(trace.Op{At: at, Kind: trace.Write, Offset: metaBase + blk*cfg.BlockSize, Size: cfg.BlockSize})
	}
	blocksFor := func(bytes int64) int64 {
		return (bytes + cfg.BlockSize - 1) / cfg.BlockSize
	}
	var live []fsmodel.FileID
	writeExtents := func(ex []fsmodel.Extent) {
		for _, e := range ex {
			off, size := e.Bytes(cfg.BlockSize)
			emit(trace.Op{At: at, Kind: trace.Write, Offset: off, Size: size})
		}
	}
	create := func() {
		size := cfg.FileSizeMin + rng.Int63n(cfg.FileSizeMax-cfg.FileSizeMin+1)
		id := fs.Create()
		got, err := fs.Append(id, blocksFor(size))
		if err != nil {
			// Full: delete something instead next round.
			_, _ = fs.Delete(id)
			return
		}
		live = append(live, id)
		writeExtents(got)
		meta(id)
	}
	remove := func() {
		if len(live) == 0 {
			return
		}
		i := rng.Intn(len(live))
		id := live[i]
		live = append(live[:i], live[i+1:]...)
		freed, err := fs.Delete(id)
		if err != nil {
			return
		}
		meta(id)
		for _, e := range freed {
			off, size := e.Bytes(cfg.BlockSize)
			emit(trace.Op{At: at, Kind: trace.Free, Offset: off, Size: size})
		}
	}
	read := func() {
		if len(live) == 0 {
			return
		}
		id := live[rng.Intn(len(live))]
		ex, err := fs.Extents(id)
		if err != nil {
			return
		}
		for _, e := range ex {
			off, size := e.Bytes(cfg.BlockSize)
			emit(trace.Op{At: at, Kind: trace.Read, Offset: off, Size: size})
		}
	}
	appendTx := func() {
		if len(live) == 0 {
			return
		}
		id := live[rng.Intn(len(live))]
		n := blocksFor(cfg.FileSizeMin + rng.Int63n(cfg.FileSizeMax-cfg.FileSizeMin+1)/4)
		if n == 0 {
			n = 1
		}
		got, err := fs.Append(id, n)
		if err != nil {
			return
		}
		writeExtents(got)
		meta(id)
	}

	created, txDone := 0, 0
	return &stepStream{step: func(e func(trace.Op)) bool {
		emit = e
		if created < cfg.InitialFiles {
			created++
			create()
			tick()
			return true
		}
		if txDone >= cfg.Transactions {
			return false
		}
		txDone++
		switch p := rng.Float64(); {
		case p < 0.40:
			read()
		case p < 0.70:
			appendTx()
		case p < 0.85:
			create()
		default:
			remove()
		}
		tick()
		return true
	}}, nil
}

// PostmarkOps materializes the stream: the legacy slice API.
func PostmarkOps(cfg PostmarkConfig) ([]trace.Op, error) {
	s, err := Postmark(cfg)
	if err != nil {
		return nil, err
	}
	return trace.Collect(s), nil
}

// OLTPConfig parameterizes the TPC-C-style workload: fixed-size page I/O
// (8 KB) with a Zipf-skewed access pattern over the data region, 2:1
// read:write, plus a sequential log-write stream of small records.
type OLTPConfig struct {
	// Ops is the number of data-page operations.
	Ops int
	// CapacityBytes is the device range used.
	CapacityBytes int64
	// PageBytes is the database page size (default 8192).
	PageBytes int64
	// ReadFrac is the data-page read fraction (default 0.66).
	ReadFrac float64
	// LogFrac is the fraction of extra log-write ops interleaved
	// (default 0.25 of Ops).
	LogFrac float64
	// MeanInterarrival spaces ops (exponential); 0 = back-to-back.
	MeanInterarrival sim.Time
	// Seed selects the random stream.
	Seed int64
}

// TPCC streams the trace one data-page operation (plus its occasional
// log append) at a time.
func TPCC(cfg OLTPConfig) (trace.Stream, error) {
	if cfg.Ops <= 0 || cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("workload: tpcc needs ops and capacity")
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 8192
	}
	if cfg.ReadFrac == 0 {
		cfg.ReadFrac = 0.66
	}
	if cfg.LogFrac == 0 {
		cfg.LogFrac = 0.25
	}
	rng := sim.NewRNG(cfg.Seed)
	// The log occupies the first 1/16 of the space; data pages the rest.
	logRegion := cfg.CapacityBytes / 16
	dataPages := (cfg.CapacityBytes - logRegion) / cfg.PageBytes
	if dataPages <= 1 {
		return nil, fmt.Errorf("workload: capacity too small for page size")
	}
	zipf := rng.Zipf(1.1, uint64(dataPages))
	var at sim.Time
	logHead := int64(0)
	tick := func() {
		if cfg.MeanInterarrival > 0 {
			at += rng.Exponential(cfg.MeanInterarrival)
		}
	}
	i := 0
	return &stepStream{step: func(emit func(trace.Op)) bool {
		if i >= cfg.Ops {
			return false
		}
		i++
		page := int64(zipf.Uint64())
		off := logRegion + page*cfg.PageBytes
		kind := trace.Write
		if rng.Bool(cfg.ReadFrac) {
			kind = trace.Read
		}
		emit(trace.Op{At: at, Kind: kind, Offset: off, Size: cfg.PageBytes})
		tick()
		if rng.Bool(cfg.LogFrac) {
			// Sequential log append, 512 B – 4 KB records.
			rec := (rng.Int63n(8) + 1) * 512
			if logHead+rec > logRegion {
				logHead = 0
			}
			emit(trace.Op{At: at, Kind: trace.Write, Offset: logHead, Size: rec})
			logHead += rec
			tick()
		}
		return true
	}}, nil
}

// TPCCOps materializes the stream: the legacy slice API.
func TPCCOps(cfg OLTPConfig) ([]trace.Op, error) {
	s, err := TPCC(cfg)
	if err != nil {
		return nil, err
	}
	return trace.Collect(s), nil
}

// ExchangeConfig parameterizes the Exchange-server-style workload: 8 KB
// random mailbox-database I/O at roughly 2:1 read:write, with periodic
// 32 KB sequential bursts (database maintenance and log flushes).
type ExchangeConfig struct {
	Ops           int
	CapacityBytes int64
	// BurstFrac is the fraction of iterations that issue a 32 KB
	// sequential burst (default 0.10).
	BurstFrac        float64
	MeanInterarrival sim.Time
	Seed             int64
}

// Exchange streams the trace one iteration (a page op or a burst) at a
// time.
func Exchange(cfg ExchangeConfig) (trace.Stream, error) {
	if cfg.Ops <= 0 || cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("workload: exchange needs ops and capacity")
	}
	const page = 8192
	if cfg.BurstFrac == 0 {
		cfg.BurstFrac = 0.10
	}
	rng := sim.NewRNG(cfg.Seed)
	pages := cfg.CapacityBytes / page
	if pages <= 8 {
		return nil, fmt.Errorf("workload: capacity too small")
	}
	var at sim.Time
	tick := func() {
		if cfg.MeanInterarrival > 0 {
			at += rng.Exponential(cfg.MeanInterarrival)
		}
	}
	burst := int64(0)
	i := 0
	return &stepStream{step: func(emit func(trace.Op)) bool {
		if i >= cfg.Ops {
			return false
		}
		i++
		if rng.Bool(cfg.BurstFrac) {
			// 32 KB sequential burst: 4 contiguous pages.
			start := rng.Int63n(pages-8) * page
			run := int64(4)
			if burst%2 == 0 {
				for k := int64(0); k < run; k++ {
					emit(trace.Op{At: at, Kind: trace.Write, Offset: start + k*page, Size: page})
				}
			} else {
				emit(trace.Op{At: at, Kind: trace.Read, Offset: start, Size: run * page})
			}
			burst++
			tick()
			return true
		}
		kind := trace.Write
		if rng.Bool(0.6) {
			kind = trace.Read
		}
		emit(trace.Op{At: at, Kind: kind, Offset: rng.Int63n(pages) * page, Size: page})
		tick()
		return true
	}}, nil
}

// ExchangeOps materializes the stream: the legacy slice API.
func ExchangeOps(cfg ExchangeConfig) ([]trace.Op, error) {
	s, err := Exchange(cfg)
	if err != nil {
		return nil, err
	}
	return trace.Collect(s), nil
}

// IOzoneConfig parameterizes the IOzone-style workload: phased sequential
// write / rewrite / read / reread of one large file in fixed-size
// records. The file rarely starts stripe-aligned, which is why the paper
// sees its largest alignment win (36.5%) here.
type IOzoneConfig struct {
	// FileBytes is the test file size.
	FileBytes int64
	// RecordBytes is the I/O unit (default 128 KB).
	RecordBytes int64
	// FileOffset is where the file starts in the address space; an
	// unaligned default (3 blocks) reflects allocator placement.
	FileOffset int64
	// MeanInterarrival spaces records (exponential); 0 = back-to-back.
	MeanInterarrival sim.Time
	// Seed selects the random stream.
	Seed int64
}

// IOzone streams the trace one record at a time across the four phases.
func IOzone(cfg IOzoneConfig) (trace.Stream, error) {
	if cfg.FileBytes <= 0 {
		return nil, fmt.Errorf("workload: iozone needs a file size")
	}
	if cfg.RecordBytes == 0 {
		cfg.RecordBytes = 128 << 10
	}
	if cfg.FileOffset == 0 {
		cfg.FileOffset = 3 * 4096
	}
	rng := sim.NewRNG(cfg.Seed)
	var at sim.Time
	tick := func() {
		if cfg.MeanInterarrival > 0 {
			at += rng.Exponential(cfg.MeanInterarrival)
		}
	}
	phases := []trace.Kind{trace.Write, trace.Write, trace.Read, trace.Read} // write, rewrite, read, reread
	phase := 0
	off := int64(0)
	return trace.Func(func() (trace.Op, bool) {
		for off >= cfg.FileBytes {
			phase++
			if phase >= len(phases) {
				return trace.Op{}, false
			}
			off = 0
		}
		size := cfg.RecordBytes
		if off+size > cfg.FileBytes {
			size = cfg.FileBytes - off
		}
		op := trace.Op{At: at, Kind: phases[phase], Offset: cfg.FileOffset + off, Size: size}
		off += size
		tick()
		return op, true
	}), nil
}

// IOzoneOps materializes the stream: the legacy slice API.
func IOzoneOps(cfg IOzoneConfig) ([]trace.Op, error) {
	s, err := IOzone(cfg)
	if err != nil {
		return nil, err
	}
	return trace.Collect(s), nil
}
