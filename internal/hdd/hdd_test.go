package hdd

import (
	"math/rand"
	"testing"

	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

func newDisk(t *testing.T, cfg Config) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestConfigValidate(t *testing.T) {
	cfg := Barracuda7200()
	cfg.CapacityBytes = 0
	if _, err := New(sim.NewEngine(), cfg); err == nil {
		t.Error("accepted zero capacity")
	}
	cfg = Barracuda7200()
	cfg.Zones = 0
	if _, err := New(sim.NewEngine(), cfg); err != nil {
		t.Errorf("zero zones should default to 1: %v", err)
	}
}

func TestZoneMapping(t *testing.T) {
	_, d := newDisk(t, Barracuda7200())
	if z := d.zoneOf(0); z != 0 {
		t.Fatalf("zoneOf(0) = %d", z)
	}
	if z := d.zoneOf(d.cfg.CapacityBytes - 1); z != d.cfg.Zones-1 {
		t.Fatalf("last byte zone = %d, want %d", z, d.cfg.Zones-1)
	}
	// Outer zone must be faster than inner.
	if d.zoneRate[0] <= d.zoneRate[d.cfg.Zones-1] {
		t.Fatal("outer zone not faster than inner")
	}
	// Cylinder mapping is monotone.
	prev := -1
	for off := int64(0); off < d.cfg.CapacityBytes; off += d.cfg.CapacityBytes / 64 {
		c := d.cylOf(off)
		if c < prev {
			t.Fatalf("cylinder mapping not monotone at %d", off)
		}
		prev = c
	}
}

func TestSeekCurve(t *testing.T) {
	_, d := newDisk(t, Barracuda7200())
	if s := d.seekTime(100, 100); s != 0 {
		t.Fatalf("zero-distance seek = %v", s)
	}
	short := d.seekTime(0, 1)
	long := d.seekTime(0, d.cfg.Cylinders-1)
	if short <= 0 || long <= short {
		t.Fatalf("seek curve broken: short %v long %v", short, long)
	}
	// Full stroke lands near the configured anchor.
	if long < d.cfg.FullStroke/2 || long > 2*d.cfg.FullStroke {
		t.Fatalf("full stroke = %v, anchor %v", long, d.cfg.FullStroke)
	}
	// Monotone in distance.
	prev := sim.Time(0)
	for dist := 1; dist < d.cfg.Cylinders; dist *= 4 {
		s := d.seekTime(0, dist)
		if s < prev {
			t.Fatalf("seek not monotone at %d", dist)
		}
		prev = s
	}
}

func TestSequentialReadBandwidth(t *testing.T) {
	eng, d := newDisk(t, Barracuda7200())
	const reqSize = 1 << 20
	const n = 64
	i := 0
	err := d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		op := trace.Op{Kind: trace.Read, Offset: int64(i) * reqSize, Size: reqSize}
		i++
		return op, true
	})
	if err != nil {
		t.Fatal(err)
	}
	bw := stats.Bandwidth(int64(n)*reqSize, eng.Now().Seconds())
	// Outer zone: close to the configured max rate.
	if bw < 70 || bw > 95 {
		t.Fatalf("sequential read bandwidth = %.1f MB/s, want ~87", bw)
	}
}

func TestRandomReadLatency(t *testing.T) {
	eng, d := newDisk(t, Barracuda7200())
	rng := rand.New(rand.NewSource(1))
	const n = 200
	i := 0
	err := d.ClosedLoop(1, func(int) (trace.Op, bool) {
		if i >= n {
			return trace.Op{}, false
		}
		i++
		off := rng.Int63n(d.LogicalBytes()/4096) * 4096
		return trace.Op{Kind: trace.Read, Offset: off, Size: 4096}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := d.Metrics().ReadResp.Mean()
	// Seek + half rotation + transfer: 10-16 ms for a 7200 RPM drive.
	if mean < 8 || mean > 20 {
		t.Fatalf("random 4K read mean = %.2f ms, want 8-20", mean)
	}
	bw := stats.Bandwidth(d.Metrics().BytesRead, eng.Now().Seconds())
	if bw > 1.0 {
		t.Fatalf("random read bandwidth = %.2f MB/s, implausibly fast", bw)
	}
}

func TestWriteCacheAbsorbsBurst(t *testing.T) {
	eng, d := newDisk(t, Barracuda7200())
	var r *Request
	d.Submit(trace.Op{Kind: trace.Write, Offset: 123 * 4096, Size: 4096}, func(x *Request) { r = x })
	eng.Run()
	if r == nil {
		t.Fatal("write never completed")
	}
	if r.Response() > sim.Millisecond {
		t.Fatalf("cached write response = %v, want ~cache latency", r.Response())
	}
}

func TestRandomWriteFasterThanRandomRead(t *testing.T) {
	// The CLOOK drain must make sustained random writes faster than
	// random reads (Table 2: 1.3 vs 0.6 MB/s).
	measure := func(kind trace.Kind) float64 {
		eng, d := newDisk(t, Barracuda7200())
		rng := rand.New(rand.NewSource(7))
		const n = 3000
		i := 0
		if err := d.ClosedLoop(4, func(int) (trace.Op, bool) {
			if i >= n {
				return trace.Op{}, false
			}
			i++
			off := rng.Int63n(d.LogicalBytes()/4096) * 4096
			return trace.Op{Kind: kind, Offset: off, Size: 4096}, true
		}); err != nil {
			t.Fatal(err)
		}
		return stats.Bandwidth(int64(n)*4096, eng.Now().Seconds())
	}
	wr := measure(trace.Write)
	rd := measure(trace.Read)
	if wr <= rd {
		t.Fatalf("random write %.2f MB/s not faster than read %.2f MB/s", wr, rd)
	}
	if wr > 10*rd {
		t.Fatalf("random write %.2f MB/s implausibly faster than read %.2f", wr, rd)
	}
}

func TestCacheReadHit(t *testing.T) {
	eng, d := newDisk(t, Barracuda7200())
	d.Submit(trace.Op{Kind: trace.Write, Offset: 0, Size: 4096}, nil)
	var r *Request
	d.Submit(trace.Op{Kind: trace.Read, Offset: 0, Size: 4096}, func(x *Request) { r = x })
	eng.RunUntil(sim.Millisecond)
	if r == nil {
		t.Fatal("read did not complete")
	}
	if d.Metrics().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", d.Metrics().CacheHits)
	}
}

func TestWriteThroughWithoutCache(t *testing.T) {
	cfg := Barracuda7200()
	cfg.CacheBytes = 0
	eng, d := newDisk(t, cfg)
	var r *Request
	d.Submit(trace.Op{Kind: trace.Write, Offset: 12345 * 4096, Size: 4096}, func(x *Request) { r = x })
	eng.Run()
	if r.Response() < sim.Millisecond {
		t.Fatalf("write-through response = %v, want mechanical latency", r.Response())
	}
}

func TestFreeIsNoop(t *testing.T) {
	eng, d := newDisk(t, Barracuda7200())
	var r *Request
	d.Submit(trace.Op{Kind: trace.Free, Offset: 0, Size: 4096}, func(x *Request) { r = x })
	eng.Run()
	if r == nil || r.Response() != 0 {
		t.Fatal("free not immediate")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, d := newDisk(t, Barracuda7200())
	if err := d.Submit(trace.Op{Kind: trace.Read, Offset: -1, Size: 4096}, nil); err == nil {
		t.Error("accepted negative offset")
	}
	if err := d.Submit(trace.Op{Kind: trace.Read, Offset: d.LogicalBytes(), Size: 4096}, nil); err == nil {
		t.Error("accepted op beyond capacity")
	}
}

func TestPlayDrains(t *testing.T) {
	_, d := newDisk(t, Barracuda7200())
	ops := []trace.Op{
		{At: 0, Kind: trace.Write, Offset: 0, Size: 65536},
		{At: sim.Millisecond, Kind: trace.Read, Offset: 1 << 30, Size: 65536},
	}
	if err := d.Play(ops); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Completed != 2 {
		t.Fatalf("completed = %d", d.Metrics().Completed)
	}
}

func TestCLOOKWrapsAround(t *testing.T) {
	eng, d := newDisk(t, Barracuda7200())
	// Fill cache with writes below the head position, then one above:
	// CLOOK serves the one at/after the head first, then wraps.
	d.Submit(trace.Op{Kind: trace.Read, Offset: d.LogicalBytes() / 2, Size: 4096}, nil)
	eng.Run() // park the head mid-disk
	lowOff := int64(4096)
	highOff := d.LogicalBytes() - 1<<20
	d.Submit(trace.Op{Kind: trace.Write, Offset: lowOff, Size: 4096}, nil)
	d.Submit(trace.Op{Kind: trace.Write, Offset: highOff, Size: 4096}, nil)
	// Both are absorbed by cache; drain order must visit highOff (ahead
	// of the head) before wrapping to lowOff.
	first := d.nextDrain()
	if first.off != highOff {
		t.Fatalf("CLOOK drained %d first, want %d (ahead of head)", first.off, highOff)
	}
	eng.Run()
	if len(d.cache) != 0 {
		t.Fatal("cache not drained")
	}
}

func TestWaitingWritesAdmittedInOrder(t *testing.T) {
	cfg := Barracuda7200()
	cfg.CacheBytes = 8192 // two 4 KB entries
	eng, d := newDisk(t, cfg)
	var order []int64
	for i := int64(0); i < 4; i++ {
		off := i * 1 << 20
		d.Submit(trace.Op{Kind: trace.Write, Offset: off, Size: 4096},
			func(r *Request) { order = append(order, r.Op.Offset) })
	}
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("completed %d of 4", len(order))
	}
	// The two blocked writes are admitted as drains free space, preserving
	// their relative submission order (absolute completion order mixes
	// with the cache-latency acks of the unblocked writes).
	pos := map[int64]int{}
	for i, off := range order {
		pos[off] = i
	}
	if pos[2<<20] > pos[3<<20] {
		t.Fatalf("waiting writes out of relative order: %v", order)
	}
}

func TestSequentialDetectionResetsOnSeek(t *testing.T) {
	_, d := newDisk(t, Barracuda7200())
	d.serviceTime(1<<30, 4096) // park the head away from offset 0
	seq := d.serviceTime(0, 65536)
	cont := d.serviceTime(65536, 65536)
	if cont >= seq {
		t.Fatalf("sequential continuation (%v) not cheaper than first access (%v)", cont, seq)
	}
	jump := d.serviceTime(d.LogicalBytes()/2, 65536)
	if jump <= cont {
		t.Fatalf("seek after jump (%v) not dearer than continuation (%v)", jump, cont)
	}
}
