package experiments

import (
	"ossd/internal/core"
	"ossd/internal/flash"
	"ossd/internal/ftl"
	"ossd/internal/runner"
	"ossd/internal/sched"
	"ossd/internal/sim"
	"ossd/internal/ssd"
	"ossd/internal/stats"
	"ossd/internal/trace"
)

// SchemesResult is an extension experiment: the three classic FTL mapping
// schemes (page-mapped log-structured, hybrid log-block, block-mapped)
// compared on sequential and random write bandwidth. The paper's
// engineering samples span exactly this design space — S1's strong random
// writes are page-mapping behaviour, S2/S3's collapse is block-granular
// RMW — so the scheme sweep shows the mechanism behind Table 2's spread.
type SchemesResult struct {
	Schemes   []string
	SeqWrite  []float64 // MB/s
	RandWrite []float64 // MB/s
	WriteAmp  []float64
}

// ID implements Result.
func (SchemesResult) ID() string { return "schemes" }

func (r SchemesResult) String() string {
	t := stats.NewTable("Extension: FTL mapping schemes (write bandwidth, MB/s)",
		"Scheme", "SeqWrite", "RandWrite", "Seq/Rand", "WriteAmp")
	for i := range r.Schemes {
		t.AddRow(r.Schemes[i], r.SeqWrite[i], r.RandWrite[i],
			stats.Ratio(r.SeqWrite[i], r.RandWrite[i]), r.WriteAmp[i])
	}
	t.AddNote("page mapping keeps random ~sequential; block mapping collapses")
	t.AddNote("(a full-block read-merge-write per random page); hybrid sits between.")
	return t.String()
}

// schemesPoint is one mapping scheme's measurements.
type schemesPoint struct {
	seq, rnd, amp float64
}

// Schemes runs the comparison on identical geometry, one spec per
// scheme. workers caps the pool (0 = runner default).
func Schemes(seed int64, workers int) (SchemesResult, error) {
	var res SchemesResult
	measure := func(s ftl.Scheme) (schemesPoint, error) {
		var pt schemesPoint
		dev, err := core.Open("ssd",
			core.WithSSD(ssd.Config{
				Elements:      8,
				Geom:          flash.Geometry{PageSize: 4096, PagesPerBlock: 64, BlocksPerPackage: 64},
				Overprovision: 0.10,
				Layout:        ssd.Interleaved,
				Scheduler:     sched.SWTF,
				CtrlOverhead:  10 * sim.Microsecond,
			}),
			core.WithScheme(s),
		)
		if err != nil {
			return pt, err
		}
		d := dev.(*core.SSD)
		if err := core.PreconditionFrac(d, 1<<20, 0.7); err != nil {
			return pt, err
		}
		pt.seq, err = core.MeasureBandwidth(d, core.BWOptions{
			Kind: trace.Write, Pattern: core.Sequential,
			ReqBytes: 256 << 10, TotalBytes: 16 << 20, Depth: 1, Seed: seed,
		})
		if err != nil {
			return pt, err
		}
		gBefore := d.Raw.GCStats()
		mBefore := d.Raw.Metrics()
		pt.rnd, err = core.MeasureBandwidth(d, core.BWOptions{
			Kind: trace.Write, Pattern: core.Random,
			ReqBytes: 4096, TotalBytes: 2 << 20, Depth: 4, Seed: seed,
		})
		if err != nil {
			return pt, err
		}
		gAfter := d.Raw.GCStats()
		mAfter := d.Raw.Metrics()
		media := float64(gAfter.HostPageWrites + gAfter.PagesMoved - gBefore.HostPageWrites - gBefore.PagesMoved)
		host := float64(mAfter.BytesWritten-mBefore.BytesWritten) / 4096
		pt.amp = media / host
		return pt, nil
	}
	schemes := []ftl.Scheme{ftl.PageMapped, ftl.HybridLog, ftl.BlockMapped}
	specs := make([]runner.Spec[schemesPoint], len(schemes))
	for i, s := range schemes {
		s := s
		specs[i] = runner.Spec[schemesPoint]{
			Name: "schemes/" + s.String(),
			Seed: seed,
			Run:  func() (schemesPoint, error) { return measure(s) },
		}
	}
	pts, err := runner.Run(specs, runner.Options{Workers: workers})
	if err != nil {
		return res, err
	}
	for i, s := range schemes {
		res.Schemes = append(res.Schemes, s.String())
		res.SeqWrite = append(res.SeqWrite, pts[i].seq)
		res.RandWrite = append(res.RandWrite, pts[i].rnd)
		res.WriteAmp = append(res.WriteAmp, pts[i].amp)
	}
	return res, nil
}
