// Package experiments contains one runner per table and figure in the
// paper's evaluation. Each experiment decomposes into independent
// simulations — one device, one workload, one seed — emitted as
// runner.Specs and executed on a worker pool (internal/runner), then
// assembled into a typed result that renders the same rows or series the
// paper reports. Results are deterministic for a fixed seed regardless
// of worker count. cmd/repro drives all of them; the root-level
// benchmarks wrap each one.
package experiments

import (
	"fmt"

	"ossd/internal/core"
)

// Result is implemented by every experiment result: a human-readable
// rendering plus the experiment's identity.
type Result interface {
	// ID is the paper artifact this reproduces (e.g. "table2").
	ID() string
	// String renders the result in the paper's format.
	String() string
}

// preconditioned builds a profile device through the registry and
// writes it end-to-end so measurements run against a fully-mapped,
// steady-state device.
func preconditioned(p core.Profile) (core.Device, error) {
	d, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	if err := core.Precondition(d, 1<<20); err != nil {
		return nil, fmt.Errorf("precondition %s: %w", p.Name, err)
	}
	return d, nil
}
