package experiments

import (
	"ossd/internal/core"
	"ossd/internal/runner"
	"ossd/internal/sim"
	"ossd/internal/stats"
	"ossd/internal/trace"
	"ossd/internal/workload"
)

// Table4Result reproduces Table 4: response-time improvement from
// stripe-aligned writes on the four macro workloads.
type Table4Result struct {
	Workloads      []string
	UnalignedMs    []float64
	AlignedMs      []float64
	ImprovementPct []float64
}

// ID implements Result.
func (Table4Result) ID() string { return "table4" }

func (r Table4Result) String() string {
	t := stats.NewTable("Table 4: Macro Benchmarks with Stripe-aligned Writes",
		"Workload", "Unaligned(ms)", "Aligned(ms)", "Improvement(%)")
	for i, w := range r.Workloads {
		t.AddRow(w, r.UnalignedMs[i], r.AlignedMs[i], r.ImprovementPct[i])
	}
	t.AddNote("paper: Postmark 1.15%%, TPCC 3.08%%, Exchange 4.89%%, IOzone 36.54%%")
	return t.String()
}

// Table4Options tunes the experiment.
type Table4Options struct {
	// Scale multiplies workload sizes (default 1).
	Scale float64
	// Seed drives the workloads.
	Seed int64
	// Workers caps the worker pool (0 = runner default).
	Workers int
}

func (o *Table4Options) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// Table4 generates each macro trace, replays it unaligned and aligned on
// fresh preconditioned copies of the Table 3 device, and reports mean
// write response improvement.
func Table4(opts Table4Options) (Table4Result, error) {
	opts.defaults()
	var res Table4Result
	probe, err := table3Device()
	if err != nil {
		return res, err
	}
	space := int64(float64(probe.LogicalBytes()) * 0.6)
	n := func(base int) int { return int(float64(base) * opts.Scale) }
	gens := []struct {
		name string
		gen  func() (trace.Stream, error)
	}{
		{"Postmark", func() (trace.Stream, error) {
			return workload.Postmark(workload.PostmarkConfig{
				Transactions:     n(12000),
				InitialFiles:     300,
				CapacityBytes:    space / 2,
				MeanInterarrival: 1500 * sim.Microsecond,
				Seed:             opts.Seed + 1,
			})
		}},
		{"TPCC", func() (trace.Stream, error) {
			return workload.TPCC(workload.OLTPConfig{
				Ops:              n(15000),
				CapacityBytes:    space,
				LogFrac:          0.05,
				MeanInterarrival: 1500 * sim.Microsecond,
				Seed:             opts.Seed + 2,
			})
		}},
		{"Exchange", func() (trace.Stream, error) {
			return workload.Exchange(workload.ExchangeConfig{
				Ops:              n(15000),
				CapacityBytes:    space,
				BurstFrac:        0.01,
				MeanInterarrival: 1500 * sim.Microsecond,
				Seed:             opts.Seed + 3,
			})
		}},
		{"IOzone", func() (trace.Stream, error) {
			return workload.IOzone(workload.IOzoneConfig{
				FileBytes:        int64(float64(space) * 0.6),
				RecordBytes:      128 << 10,
				MeanInterarrival: 3500 * sim.Microsecond,
				Seed:             opts.Seed + 4,
			})
		}},
	}
	mk := func() (core.Device, error) {
		d, err := table3Device()
		if err != nil {
			return nil, err
		}
		// 60% fill, like Table 3: a working device, not a full one.
		if err := core.PreconditionFrac(d, 1<<20, 0.6); err != nil {
			return nil, err
		}
		return d, nil
	}
	var specs []runner.Spec[float64]
	for _, g := range gens {
		// Streams are single-use: each spec regenerates its workload from
		// the seed, and the aligned variant wraps it in the streaming
		// merge-and-align pass. The merging scheme models a real write
		// buffer: a short hold window and a read barrier, so merging
		// exploits only genuine temporal contiguity.
		gen := g.gen
		alignedGen := func() (trace.Stream, error) {
			s, err := gen()
			if err != nil {
				return nil, err
			}
			return trace.AlignStream(s, 32<<10, trace.AlignOptions{
				MaxGap:      6 * sim.Millisecond,
				ReadBarrier: true,
			})
		}
		for _, v := range []struct {
			label string
			mk    func() (trace.Stream, error)
		}{{"unaligned", gen}, {"aligned", alignedGen}} {
			v := v
			specs = append(specs, runner.Spec[float64]{
				Name:     g.name + "/" + v.label,
				Workload: g.name,
				Seed:     opts.Seed,
				Run:      func() (float64, error) { return driveMeanWriteShifted(mk, v.mk) },
			})
		}
	}
	means, err := runner.Run(specs, runner.Options{Workers: opts.Workers})
	if err != nil {
		return res, err
	}
	for i, g := range gens {
		u, a := means[i*2], means[i*2+1]
		res.Workloads = append(res.Workloads, g.name)
		res.UnalignedMs = append(res.UnalignedMs, u)
		res.AlignedMs = append(res.AlignedMs, a)
		res.ImprovementPct = append(res.ImprovementPct, stats.Improvement(u, a))
	}
	return res, nil
}

// driveMeanWriteShifted drives a freshly generated stream (timestamps
// shifted past the device's current clock) and returns the mean write
// response over the driven window only.
func driveMeanWriteShifted(mk func() (core.Device, error), mkStream func() (trace.Stream, error)) (float64, error) {
	d, err := mk()
	if err != nil {
		return 0, err
	}
	stream, err := mkStream()
	if err != nil {
		return 0, err
	}
	sd, isSSD := d.(*core.SSD)
	var beforeN uint64
	var beforeTotal float64
	if isSSD {
		w := sd.Raw.Metrics().WriteResp
		beforeN, beforeTotal = w.N(), w.Mean()*float64(w.N())
	}
	if err := d.Drive(trace.Shift(stream, d.Engine().Now())); err != nil {
		return 0, err
	}
	if isSSD {
		w := sd.Raw.Metrics().WriteResp
		n := w.N() - beforeN
		if n == 0 {
			return 0, nil
		}
		return (w.Mean()*float64(w.N()) - beforeTotal) / float64(n), nil
	}
	return d.Metrics().MeanWriteMs, nil
}
